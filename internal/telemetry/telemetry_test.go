package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"lmas/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(10, 1.5)
	if g.Last() != 0 || g.Samples() != nil {
		t.Fatal("nil gauge recorded")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveDuration(sim.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded")
	}
	r.Decide(0, "s", "a", "d")
	if r.Decisions() != nil {
		t.Fatal("nil registry logged a decision")
	}
	var rep RunReport
	r.Fill(&rep)
	if rep.Counters != nil || rep.Histograms != nil {
		t.Fatal("nil registry filled a report")
	}
}

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("packets")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("Value = %d", c.Value())
	}
	if r.Counter("packets") != c {
		t.Fatal("get-or-create returned a new counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delta")
		}
	}()
	c.Add(-1)
}

func TestInstrumentKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering a gauge over a counter")
		}
	}()
	r.Gauge("name")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("backlog")
	g.Set(100, 2)
	g.Set(200, 5)
	if g.Last() != 5 || len(g.Samples()) != 2 {
		t.Fatalf("Last=%v len=%d", g.Last(), len(g.Samples()))
	}
	if g.Samples()[0] != (GaugeSample{T: 100, V: 2}) {
		t.Fatalf("sample[0] = %+v", g.Samples()[0])
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	want := []int64{1, 2, 1, 1} // <=1, <=10, <=100, overflow
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d", i, h.counts[i], w)
		}
	}
	if h.min != 0.5 || h.max != 500 {
		t.Fatalf("min/max = %v/%v", h.min, h.max)
	}
	// Quantiles are monotone in q and clamped to [min, max].
	prev := h.Quantile(0)
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v)=%v < previous %v", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(0) != 0.5 || h.Quantile(1) != 500 {
		t.Fatalf("extremes = %v/%v", h.Quantile(0), h.Quantile(1))
	}
	if got := h.Quantile(0.5); got < 1 || got > 10 {
		t.Fatalf("median %v outside containing bucket (1,10]", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-ascending bounds")
		}
	}()
	r.Histogram("bad", []float64{1, 1})
}

func TestDecisions(t *testing.T) {
	r := NewRegistry()
	r.Decide(500, "loadmgr", "switch-policy", "static->sr",
		Reading{Key: "host0.util", Value: 0.95},
		Reading{Key: "host1.util", Value: 0.20})
	ds := r.Decisions()
	if len(ds) != 1 || ds[0].T != 500 || ds[0].Source != "loadmgr" || len(ds[0].Readings) != 2 {
		t.Fatalf("decisions = %+v", ds)
	}
}

// TestReportDeterministicJSON: filling and marshaling the same instrument
// state twice yields byte-identical output.
func TestReportDeterministicJSON(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		r.Counter("b.count").Add(7)
		r.Counter("a.count").Add(3)
		g := r.Gauge("backlog")
		g.Set(10, 1)
		g.Set(20, 4)
		h := r.Histogram("lat", nil)
		h.ObserveDuration(3 * sim.Millisecond)
		h.ObserveDuration(40 * sim.Microsecond)
		r.Decide(100, "route.sort", "switch-policy", "static->sr")
		rep := NewRunReport("unit", 42, 2*sim.Second)
		rep.Config = ClusterConfig{Hosts: 2, ASUs: 4}
		rep.Workload = map[string]any{"n": 1024, "dist": "uniform"}
		r.Fill(rep)
		b, err := Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("report JSON not byte-identical:\n%s\n---\n%s", a, b)
	}
	s := string(a)
	// Counters sorted by name regardless of registration order.
	if strings.Index(s, "a.count") > strings.Index(s, "b.count") {
		t.Fatal("counters not sorted by name")
	}
	if !strings.Contains(s, `"schema": "lmas/runreport/v1"`) {
		t.Fatal("schema missing")
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := NewRunReport("rt", 7, sim.Second)
	rep.Config = ClusterConfig{Hosts: 1, ASUs: 2}
	single := dir + "/single.json"
	if err := WriteJSON(single, rep); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 1 || tr.Runs[0].Name != "rt" || tr.Runs[0].Seed != 7 {
		t.Fatalf("single round trip: %+v", tr.Runs)
	}

	traj := &Trajectory{Schema: TrajectorySchema, Quick: true, Runs: []*RunReport{rep, NewRunReport("rt2", 8, 2*sim.Second)}}
	multi := dir + "/multi.json"
	if err := WriteJSON(multi, traj); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadFile(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Runs) != 2 || !tr2.Quick {
		t.Fatalf("trajectory round trip: %+v", tr2)
	}

	bad := dir + "/bad.json"
	if err := WriteJSON(bad, map[string]string{"schema": "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// TestDiffDetectsRuntimeRegression is the acceptance check: a 2x runtime
// slowdown must regress; a small wobble must not.
func TestDiffDetectsRuntimeRegression(t *testing.T) {
	base := NewRunReport("sort", 42, 10*sim.Second)
	slow := NewRunReport("sort", 42, 20*sim.Second)
	res := Diff(
		&Trajectory{Runs: []*RunReport{base}},
		&Trajectory{Runs: []*RunReport{slow}},
		DefaultDiffOptions(),
	)
	if !res.Regressed() {
		t.Fatal("2x slowdown not flagged as regression")
	}

	wobble := NewRunReport("sort", 42, sim.Duration(10.5*float64(sim.Second)))
	res = Diff(
		&Trajectory{Runs: []*RunReport{base}},
		&Trajectory{Runs: []*RunReport{wobble}},
		DefaultDiffOptions(),
	)
	if res.Regressed() {
		t.Fatal("5% wobble flagged under a 10% threshold")
	}

	// A speedup never regresses.
	fast := NewRunReport("sort", 42, 5*sim.Second)
	res = Diff(
		&Trajectory{Runs: []*RunReport{base}},
		&Trajectory{Runs: []*RunReport{fast}},
		DefaultDiffOptions(),
	)
	if res.Regressed() {
		t.Fatal("2x speedup flagged as regression")
	}
}

func TestDiffP99AndMismatches(t *testing.T) {
	mkRep := func(p99 float64) *RunReport {
		rep := NewRunReport("r", 1, sim.Second)
		rep.Histograms = []HistogramReport{{Name: "lat", P99: p99, Count: 10}}
		return rep
	}
	opt := DiffOptions{RuntimeThreshold: 0.10, P99Threshold: 0.25}
	res := Diff(
		&Trajectory{Runs: []*RunReport{mkRep(0.010)}},
		&Trajectory{Runs: []*RunReport{mkRep(0.020)}},
		opt,
	)
	if !res.Regressed() {
		t.Fatal("2x p99 not flagged with p99 gate enabled")
	}

	// Unmatched runs land in Missing, not Entries.
	res = Diff(
		&Trajectory{Runs: []*RunReport{NewRunReport("only-base", 1, sim.Second)}},
		&Trajectory{Runs: []*RunReport{NewRunReport("only-new", 1, sim.Second)}},
		DefaultDiffOptions(),
	)
	if len(res.Missing) != 2 || res.Regressed() {
		t.Fatalf("missing = %v, regressed = %v", res.Missing, res.Regressed())
	}

	// Config mismatch is a note, never a regression.
	a := NewRunReport("r", 1, sim.Second)
	a.Config = ClusterConfig{Hosts: 2}
	b := NewRunReport("r", 2, sim.Second)
	b.Config = ClusterConfig{Hosts: 4}
	res = Diff(&Trajectory{Runs: []*RunReport{a}}, &Trajectory{Runs: []*RunReport{b}}, DefaultDiffOptions())
	if res.Regressed() {
		t.Fatal("config/seed mismatch treated as regression")
	}
	var sawConfig, sawSeed bool
	for _, e := range res.Entries {
		switch e.Field {
		case "config":
			sawConfig = true
		case "seed":
			sawSeed = true
		}
	}
	if !sawConfig || !sawSeed {
		t.Fatalf("config/seed notes missing: %+v", res.Entries)
	}
}
