package terraflow

import (
	"encoding/binary"

	"lmas/internal/records"
)

// CellRecordSize is the fixed record size for restructured grid cells:
// 4 B elevation key, 4 B x, 4 B y, 8 x 4 B neighbor elevations, 4 B pad.
// Embedding neighbor and position information is exactly what lets cells
// "be processed independently, effectively converting the grid from a
// stream into a set".
const CellRecordSize = 48

// NoNeighbor marks a missing (off-grid) neighbor elevation. Generated
// elevations stay below MaxElev, so the sentinel is unambiguous.
const NoNeighbor = uint32(0xFFFFFFFF)

// neighborOffsets enumerates the 8-connected neighborhood in a fixed order.
var neighborOffsets = [8][2]int{
	{0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0}, {-1, -1},
}

// Cell is a decoded restructured grid cell.
type Cell struct {
	Elev uint32
	X, Y uint32
	// Nbr holds neighbor elevations in neighborOffsets order;
	// NoNeighbor where the grid ends.
	Nbr [8]uint32
}

// EncodeCell writes the restructured record for (x, y) into rec.
func EncodeCell(g *Grid, x, y int, rec []byte) {
	_ = rec[CellRecordSize-1]
	binary.LittleEndian.PutUint32(rec[0:], g.At(x, y))
	binary.LittleEndian.PutUint32(rec[4:], uint32(x))
	binary.LittleEndian.PutUint32(rec[8:], uint32(y))
	for i, off := range neighborOffsets {
		nx, ny := x+off[0], y+off[1]
		e := NoNeighbor
		if nx >= 0 && nx < g.W && ny >= 0 && ny < g.H {
			e = g.At(nx, ny)
		}
		binary.LittleEndian.PutUint32(rec[12+4*i:], e)
	}
	binary.LittleEndian.PutUint32(rec[44:], 0)
}

// DecodeCell parses a restructured record.
func DecodeCell(rec []byte) Cell {
	var c Cell
	c.Elev = binary.LittleEndian.Uint32(rec[0:])
	c.X = binary.LittleEndian.Uint32(rec[4:])
	c.Y = binary.LittleEndian.Uint32(rec[8:])
	for i := range c.Nbr {
		c.Nbr[i] = binary.LittleEndian.Uint32(rec[12+4*i:])
	}
	return c
}

// order is the total processing order on cells: (elevation, id). Ties in
// elevation are broken by id so time-forward processing has a strict order
// even on plateaus.
func order(elev, id uint32) uint64 { return uint64(elev)<<32 | uint64(id) }

// NeighborID reports the cell id of neighbor i of (x, y) on a WxH grid, or
// false if off-grid.
func NeighborID(w, h int, x, y uint32, i int) (uint32, bool) {
	nx, ny := int(x)+neighborOffsets[i][0], int(y)+neighborOffsets[i][1]
	if nx < 0 || nx >= w || ny < 0 || ny >= h {
		return 0, false
	}
	return uint32(ny*w + nx), true
}

// SteepestDescent reports the neighbor index that cell c drains to — the
// minimum (elevation, id) among neighbors below c in the total order — or
// false if c is a local minimum.
func SteepestDescent(w, h int, c Cell) (int, bool) {
	selfID := c.Y*uint32(w) + c.X
	self := order(c.Elev, selfID)
	best, bestOrd, found := -1, uint64(0), false
	for i, e := range c.Nbr {
		if e == NoNeighbor {
			continue
		}
		id, ok := NeighborID(w, h, c.X, c.Y, i)
		if !ok {
			continue
		}
		o := order(e, id)
		if o >= self {
			continue
		}
		if !found || o < bestOrd {
			best, bestOrd, found = i, o, true
		}
	}
	return best, found
}

var _ = records.KeyBytes // cell records reuse the 4-byte key convention
