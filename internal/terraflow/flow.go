package terraflow

import (
	"fmt"
	"sort"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/pqueue"
	"lmas/internal/sim"
)

// FlowAccumulation computes each cell's upstream area — the number of cells
// (including itself) whose flow path passes through it — the flow index
// TerraFlow exists to produce: "flow indices characterizing the slope
// orientation and the 'upstream' area of each grid cell of a large terrain"
// (Section 4.1). Flow follows the steepest-descent direction (single flow
// direction), so the computation is time-forward processing in *descending*
// elevation order: each cell receives the accumulated areas of its uphill
// contributors, adds one for itself, and forwards the total downhill.
//
// It consumes the same sorted cell sequence as Watershed (reversed), runs
// on the cluster's first host, and spills its priority queue to the first
// ASU's disk like Watershed does.
func FlowAccumulation(cl *cluster.Cluster, g *Grid, cells *sortedCells, pqMemItems int) ([]uint32, sim.Duration, error) {
	host := cl.Hosts[0]
	spillASU := cl.ASUs[0]
	eng := &bte.Hooked{Engine: bte.NewDisk(spillASU.Disk)}
	areas := make([]uint32, g.Cells())
	var werr error
	start := cl.Sim.Now()

	// Deliver packets in reverse order with per-ASU prefetch readers.
	rev := make([]int, len(cells.packets))
	for i := range rev {
		rev[i] = len(cells.packets) - 1 - i
	}
	feeds := make([]*sim.Queue[container.Packet], len(cl.ASUs))
	perASU := make([][]container.Packet, len(cl.ASUs))
	for _, pi := range rev {
		if src := cells.srcASU[pi]; src >= 0 {
			perASU[src] = append(perASU[src], cells.packets[pi])
		}
	}
	for i, asu := range cl.ASUs {
		if len(perASU[i]) == 0 {
			continue
		}
		i, asu := i, asu
		feeds[i] = sim.NewQueue[container.Packet](cl.Sim, fmt.Sprintf("flow.feed%d", i), 4)
		cl.Sim.Spawn(fmt.Sprintf("flow.read@asu%d", i), func(p *sim.Proc) {
			for _, pk := range perASU[i] {
				asu.Disk.Read(p, pk.Bytes())
				cl.Net.Stream(p, asu.NIC, host.NIC, pk.Bytes()+64)
				if err := feeds[i].Put(p, pk); err != nil {
					panic(err)
				}
			}
			feeds[i].Close()
		})
	}

	cl.Sim.Spawn("flowaccum@host", func(p *sim.Proc) {
		eng.OnXfer = func(pp *sim.Proc, bytes int) {
			cl.Net.Send(pp, host.NIC, spillASU.NIC, bytes+64)
		}
		pq := pqueue.New(cl, host, eng, pqMemItems)
		pq.Strict = true
		cm := cl.Params.Costs
		touch := cl.Touch(host)

		var group []Cell
		var groupElev uint32
		haveGroup := false
		processGroup := func() {
			if len(group) == 0 {
				return
			}
			// Descending order overall; within an elevation group,
			// descending id (the reverse of the ascending total
			// order).
			sort.Slice(group, func(i, j int) bool {
				return g.ID(int(group[i].X), int(group[i].Y)) > g.ID(int(group[j].X), int(group[j].Y))
			})
			for _, c := range group {
				id := g.ID(int(c.X), int(c.Y))
				// Processing order key: descending (elev,id) means
				// ascending flipped order.
				self := ^order(c.Elev, id)
				area := uint64(1)
				for {
					it, ok := pq.Peek(p)
					if !ok || it.Key != self {
						break
					}
					pq.PopMin(p)
					area += it.Payload
				}
				if area > uint64(g.Cells()) {
					werr = fmt.Errorf("terraflow: cell %d accumulated %d > grid size", id, area)
					return
				}
				areas[id] = uint32(area)
				if sd, ok := SteepestDescent(g.W, g.H, c); ok {
					nid, _ := NeighborID(g.W, g.H, c.X, c.Y, sd)
					// The downhill neighbor processes later in
					// descending order: its flipped key is larger.
					nElev := c.Nbr[sd]
					pq.Push(p, pqueue.Item{Key: ^order(nElev, nid), Payload: area})
				}
				host.Compute(p, touch+watershedOpsPerCell*cm.CompareOps)
			}
			group = group[:0]
		}

		for _, pi := range rev {
			pk := cells.packets[pi]
			if src := cells.srcASU[pi]; src >= 0 {
				got, ok := feeds[src].Get(p)
				if !ok {
					werr = fmt.Errorf("terraflow: flow feed from asu%d ended early", src)
					return
				}
				pk = got
			}
			// Records inside the packet are ascending; walk backwards.
			for r := pk.Len() - 1; r >= 0; r-- {
				c := DecodeCell(pk.Buf.Record(r))
				if haveGroup && c.Elev != groupElev {
					processGroup()
				}
				groupElev, haveGroup = c.Elev, true
				group = append(group, c)
			}
		}
		processGroup()
		if werr == nil && pq.Len() != 0 {
			werr = fmt.Errorf("terraflow: %d undelivered flow contributions", pq.Len())
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return nil, 0, fmt.Errorf("terraflow: flow accumulation: %w", err)
	}
	if werr != nil {
		return nil, 0, werr
	}
	for i, a := range areas {
		if a == 0 {
			return nil, 0, fmt.Errorf("terraflow: cell %d never accumulated", i)
		}
	}
	return areas, sim.Duration(cl.Sim.Now() - start), nil
}

// ReferenceAccumulation computes upstream areas in memory by processing
// cells in descending total order — the oracle for FlowAccumulation.
func ReferenceAccumulation(g *Grid) []uint32 {
	n := g.Cells()
	areas := make([]uint32, n)
	type cellOrd struct {
		ord uint64
		id  uint32
	}
	cells := make([]cellOrd, n)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			id := g.ID(x, y)
			cells[id] = cellOrd{ord: order(g.At(x, y), id), id: id}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].ord > cells[j].ord })
	var rec [CellRecordSize]byte
	for i := range areas {
		areas[i] = 1
	}
	for _, co := range cells {
		x, y := int(co.id)%g.W, int(co.id)/g.W
		EncodeCell(g, x, y, rec[:])
		c := DecodeCell(rec[:])
		if sd, ok := SteepestDescent(g.W, g.H, c); ok {
			nid, _ := NeighborID(g.W, g.H, c.X, c.Y, sd)
			areas[nid] += areas[co.id]
		}
	}
	return areas
}
