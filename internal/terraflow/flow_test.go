package terraflow

import (
	"testing"
	"testing/quick"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
)

func TestReferenceAccumulationLine(t *testing.T) {
	// A monotone 1-D slope: cell 0 is the minimum, everything drains
	// left; upstream areas are n, n-1, ..., 1.
	g := NewGrid(5, 1)
	for i := range g.Elev {
		g.Elev[i] = uint32(100 * (i + 1))
	}
	areas := ReferenceAccumulation(g)
	want := []uint32{5, 4, 3, 2, 1}
	for i, w := range want {
		if areas[i] != w {
			t.Fatalf("areas = %v, want %v", areas, want)
		}
	}
}

func TestReferenceAccumulationConservation(t *testing.T) {
	// Every cell contributes exactly once to each cell on its flow
	// path; the minimum of a single-basin terrain accumulates all.
	g := FromBasins(12, 12, []Basin{{X: 6, Y: 6, Base: 0}}, 10)
	areas := ReferenceAccumulation(g)
	if areas[g.ID(6, 6)] != uint32(g.Cells()) {
		t.Fatalf("basin center area %d, want %d", areas[g.ID(6, 6)], g.Cells())
	}
	// Ridge/peak cells have area 1 somewhere.
	min := areas[0]
	for _, a := range areas {
		if a < min {
			min = a
		}
	}
	if min != 1 {
		t.Fatalf("smallest area %d, want 1 (a cell nothing drains into)", min)
	}
}

func TestFlowAccumulationMatchesReference(t *testing.T) {
	cl := testCluster(1, 4)
	g, _ := SyntheticBasins(32, 32, 3, 10, 11)
	opt := DefaultOptions()
	opt.Sort = dsmsort.Config{Alpha: 4, Beta: 64, Gamma2: 4, PacketRecords: 32, Placement: dsmsort.Active, Seed: 1}
	opt.PacketRecords = 32
	opt.Flow = true
	res, err := Run(cl, g, opt) // Run validates areas and the cross-check
	if err != nil {
		t.Fatal(err)
	}
	if res.Areas == nil || res.FlowAccum <= 0 {
		t.Fatal("flow accumulation did not run")
	}
	if res.Total() <= res.Restructure+res.Sort+res.Watershed {
		t.Fatal("Total must include the flow pass")
	}
}

func TestFlowOnRandomTerrain(t *testing.T) {
	cl := testCluster(1, 2)
	g := Random(16, 16, 3)
	opt := DefaultOptions()
	opt.Sort = dsmsort.Config{Alpha: 2, Beta: 32, Gamma2: 4, PacketRecords: 16, Placement: dsmsort.Active, Seed: 1}
	opt.PacketRecords = 16
	opt.Flow = true
	if _, err := Run(cl, g, opt); err != nil {
		t.Fatal(err)
	}
}

// TestFlowProperty: emulated accumulation equals the reference on
// arbitrary random terrains (validated inside Run, including the
// watershed-size cross-check).
func TestFlowProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%10) + 4
		h := int(hRaw%10) + 4
		cl := testCluster(1, 2)
		g := Random(w, h, seed)
		opt := DefaultOptions()
		opt.Sort = dsmsort.Config{Alpha: 2, Beta: 32, Gamma2: 4, PacketRecords: 16, Placement: dsmsort.Active, Seed: 1}
		opt.PacketRecords = 16
		opt.Flow = true
		_, err := Run(cl, g, opt)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowPlateau(t *testing.T) {
	// Constant grid: all flow converges on cell 0 through id-order
	// descent chains; cell 0's area is the whole grid.
	cl := testCluster(1, 2)
	g := NewGrid(6, 6)
	for i := range g.Elev {
		g.Elev[i] = 7
	}
	opt := DefaultOptions()
	opt.Sort = dsmsort.Config{Alpha: 2, Beta: 32, Gamma2: 4, PacketRecords: 16, Placement: dsmsort.Active, Seed: 1}
	opt.PacketRecords = 16
	opt.Flow = true
	res, err := Run(cl, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Areas[0] != 36 {
		t.Fatalf("plateau sink area %d, want 36", res.Areas[0])
	}
}

func testClusterFlowBench(b *testing.B) *cluster.Cluster {
	b.Helper()
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = 1, 4
	p.RecordSize = CellRecordSize
	return cluster.New(p)
}

func BenchmarkFlowAccumulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := testClusterFlowBench(b)
		g, _ := SyntheticBasins(64, 64, 4, 10, 7)
		opt := DefaultOptions()
		opt.Flow = true
		if _, err := Run(cl, g, opt); err != nil {
			b.Fatal(err)
		}
	}
}
