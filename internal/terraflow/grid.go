// Package terraflow implements the terrain-analysis application of
// Section 4.1: the watershed stage of the TerraFlow drainage modelling
// package, restructured for active storage.
//
// The computation has three steps. "Step 1 restructures the grid to include
// neighbor and position information in each grid cell, allowing cells to be
// processed independently and effectively converting the grid from a stream
// into a set. This step is easily distributed... Step 2 invokes an external
// sort to order records by elevation... Step 3 uses neighbor information to
// propagate colors from the lowest points up/outward to the peaks and
// ridges. This step is difficult to parallelize because it uses
// time-forward processing and relies on ordering for correctness."
//
// Real TerraFlow consumes sensor raster grids (NASA/USGS DEMs); this
// reproduction generates synthetic terrains with controlled watershed
// structure instead (see DESIGN.md, "Substitutions") — the code paths
// exercised are identical.
package terraflow

import (
	"fmt"
	"math/rand"
)

// MaxElev bounds generated elevations, leaving headroom below NoNeighbor.
const MaxElev = 1 << 30

// Grid is a W x H raster of elevations, row-major.
type Grid struct {
	W, H int
	Elev []uint32
}

// NewGrid allocates a zero grid.
func NewGrid(w, h int) *Grid {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("terraflow: bad grid %dx%d", w, h))
	}
	return &Grid{W: w, H: h, Elev: make([]uint32, w*h)}
}

// At reports the elevation at (x, y).
func (g *Grid) At(x, y int) uint32 { return g.Elev[y*g.W+x] }

// Set assigns the elevation at (x, y).
func (g *Grid) Set(x, y int, e uint32) { g.Elev[y*g.W+x] = e }

// ID reports the cell id of (x, y): its row-major index, also used as the
// tie-breaker in the processing order and as the watershed color of minima.
func (g *Grid) ID(x, y int) uint32 { return uint32(y*g.W + x) }

// Cells reports the cell count.
func (g *Grid) Cells() int { return g.W * g.H }

// Basin is a synthetic watershed: terrain slopes toward its center.
type Basin struct {
	X, Y int
	// Base is the center elevation.
	Base uint32
}

// SyntheticBasins builds a terrain as the lower envelope of Chebyshev cones
// around randomly placed basin centers: elev = min_i(base_i + slope * max
// (|dx|,|dy|)). Every cell has a strictly descending neighbor path to some
// center, so with well-separated centers the watershed count equals the
// basin count exactly — which tests rely on.
func SyntheticBasins(w, h, basins int, slope uint32, seed int64) (*Grid, []Basin) {
	if basins < 1 {
		panic("terraflow: need at least one basin")
	}
	if slope < 1 {
		slope = 1
	}
	rng := rand.New(rand.NewSource(seed))
	bs := make([]Basin, basins)
	for i := range bs {
		bs[i] = Basin{
			X:    rng.Intn(w),
			Y:    rng.Intn(h),
			Base: uint32(rng.Intn(1000)),
		}
	}
	g := FromBasins(w, h, bs, slope)
	return g, bs
}

// FromBasins builds the lower-envelope terrain for explicit basin centers.
func FromBasins(w, h int, bs []Basin, slope uint32) *Grid {
	g := NewGrid(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			best := uint32(MaxElev - 1)
			for _, b := range bs {
				dx, dy := x-b.X, y-b.Y
				if dx < 0 {
					dx = -dx
				}
				if dy < 0 {
					dy = -dy
				}
				d := dx
				if dy > d {
					d = dy
				}
				e := b.Base + slope*uint32(d)
				if e < best {
					best = e
				}
			}
			g.Set(x, y, best)
		}
	}
	return g
}

// Random fills a grid with uniform random elevations — a worst-case terrain
// with many tiny watersheds, used by property tests against the reference
// implementation.
func Random(w, h int, seed int64) *Grid {
	rng := rand.New(rand.NewSource(seed))
	g := NewGrid(w, h)
	for i := range g.Elev {
		g.Elev[i] = uint32(rng.Intn(MaxElev))
	}
	return g
}

// Bytes reports the raw raster size (4 bytes per cell), the unit the
// emulated disks transfer during restructuring.
func (g *Grid) Bytes() int { return 4 * g.Cells() }
