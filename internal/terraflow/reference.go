package terraflow

// ReferenceWatersheds labels every cell with the id of the local minimum it
// drains to, by direct steepest-descent pointer chasing in memory. It is
// the oracle the time-forward implementation is validated against: both
// use the same total order and the same steepest-descent rule, so their
// labelings must be identical.
func ReferenceWatersheds(g *Grid) []uint32 {
	n := g.Cells()
	colors := make([]uint32, n)
	const unset = NoNeighbor
	for i := range colors {
		colors[i] = unset
	}
	var rec [CellRecordSize]byte
	// resolve follows descent pointers iteratively, coloring the whole
	// path once the sink is known.
	var path []uint32
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			id := g.ID(x, y)
			if colors[id] != unset {
				continue
			}
			path = path[:0]
			cx, cy := x, y
			var color uint32
			for {
				cid := g.ID(cx, cy)
				if colors[cid] != unset {
					color = colors[cid]
					break
				}
				path = append(path, cid)
				EncodeCell(g, cx, cy, rec[:])
				c := DecodeCell(rec[:])
				sd, ok := SteepestDescent(g.W, g.H, c)
				if !ok {
					color = cid // local minimum: its own id
					break
				}
				nid, _ := NeighborID(g.W, g.H, c.X, c.Y, sd)
				cx, cy = int(nid)%g.W, int(nid)/g.W
			}
			for _, cid := range path {
				colors[cid] = color
			}
		}
	}
	return colors
}

// CountWatersheds reports the number of distinct labels.
func CountWatersheds(colors []uint32) int {
	seen := make(map[uint32]struct{})
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}
