package terraflow

import (
	"fmt"
	"sort"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/dsmsort"
	"lmas/internal/extsort"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// restructureOpsPerCell is the declared per-cell cost of step 1 beyond the
// per-record touch: gathering eight neighbor elevations.
const restructureOpsPerCell = 8

// band reports the row range ASU i of d holds: contiguous horizontal bands
// ("easily distributed (e.g., by blocking)").
func band(h, d, i int) (lo, hi int) {
	lo = i * h / d
	hi = (i + 1) * h / d
	return lo, hi
}

// Restructure runs step 1: turning the raw raster into a Set of
// self-contained cell records, one output set per ASU. With Active
// placement each ASU restructures its own band in parallel; with
// Conventional placement the host pulls every band over the interconnect,
// restructures it, and writes records back to dumb storage.
func Restructure(cl *cluster.Cluster, g *Grid, placement dsmsort.Placement, packetRecords int) ([]*container.Set, sim.Duration, error) {
	if cl.Params.RecordSize != CellRecordSize {
		return nil, 0, fmt.Errorf("terraflow: cluster record size %d, need %d", cl.Params.RecordSize, CellRecordSize)
	}
	d := len(cl.ASUs)
	sets := make([]*container.Set, d)
	for i, asu := range cl.ASUs {
		sets[i] = container.NewSet(fmt.Sprintf("cells@%s", asu.Name), bte.NewDisk(asu.Disk), CellRecordSize)
	}
	start := cl.Sim.Now()

	emitBand := func(p *sim.Proc, compute *cluster.Node, asuIdx, lo, hi int) {
		asu := cl.ASUs[asuIdx]
		// Read the band plus one halo row on each side (neighbor rows).
		rows := hi - lo
		halo := 0
		if lo > 0 {
			halo++
		}
		if hi < g.H {
			halo++
		}
		asu.Disk.Read(p, (rows+halo)*g.W*4)
		if compute.Kind == cluster.Host {
			cl.Net.Stream(p, asu.NIC, compute.NIC, (rows+halo)*g.W*4+64)
		}
		cm := cl.Params.Costs
		touch := cl.Touch(compute)
		buf := records.NewBuffer(packetRecords, CellRecordSize)
		fill := 0
		flush := func() {
			if fill == 0 {
				return
			}
			pk := container.NewPacket(buf.Slice(0, fill).ClonePooled())
			if compute.Kind == cluster.Host {
				// Records return to dumb storage over the net.
				cl.Net.Stream(p, compute.NIC, asu.NIC, pk.Bytes()+64)
			}
			sets[asuIdx].Add(p, pk)
			fill = 0
		}
		for y := lo; y < hi; y++ {
			// Per-row CPU charge keeps compute interleaved with I/O.
			compute.Compute(p, float64(g.W)*(touch+restructureOpsPerCell*cm.CompareOps))
			for x := 0; x < g.W; x++ {
				EncodeCell(g, x, y, buf.Record(fill))
				fill++
				if fill == packetRecords {
					flush()
				}
			}
		}
		flush()
		sets[asuIdx].Flush(p)
	}

	switch placement {
	case dsmsort.Active:
		for i := 0; i < d; i++ {
			i := i
			lo, hi := band(g.H, d, i)
			cl.Sim.Spawn(fmt.Sprintf("restructure@asu%d", i), func(p *sim.Proc) {
				emitBand(p, cl.ASUs[i], i, lo, hi)
			})
		}
	case dsmsort.Conventional:
		host := cl.Hosts[0]
		cl.Sim.Spawn("restructure@host", func(p *sim.Proc) {
			for i := 0; i < d; i++ {
				lo, hi := band(g.H, d, i)
				emitBand(p, host, i, lo, hi)
			}
		})
	default:
		return nil, 0, fmt.Errorf("terraflow: unknown placement %v", placement)
	}
	if err := cl.Sim.Run(); err != nil {
		return nil, 0, fmt.Errorf("terraflow: restructure: %w", err)
	}
	return sets, sim.Duration(cl.Sim.Now() - start), nil
}

// inputFromSets wraps step 1's output as a sort input, digesting the
// records outside virtual time.
func inputFromSets(sets []*container.Set) *dsmsort.Input {
	in := &dsmsort.Input{Sets: sets}
	for _, set := range sets {
		set.ForEach(func(pk container.Packet) bool {
			in.Checksum.Add(pk.Buf)
			in.N += pk.Len()
			return true
		})
	}
	return in
}

// sortedCells is the elevation-ordered cell sequence step 3 consumes, with
// the storage location of each packet so its delivery can be charged.
type sortedCells struct {
	packets []container.Packet
	srcASU  []int
}

// sortCells runs step 2 and returns the ordered sequence. Active placement
// uses DSM-Sort; Conventional uses the host-only external mergesort.
func sortCells(cl *cluster.Cluster, placement dsmsort.Placement, cfg dsmsort.Config, xcfg extsort.Config, in *dsmsort.Input) (*sortedCells, sim.Duration, error) {
	start := cl.Sim.Now()
	out := &sortedCells{}
	switch placement {
	case dsmsort.Active:
		res, err := dsmsort.Sort(cl, cfg, in)
		if err != nil {
			return nil, 0, fmt.Errorf("terraflow: sort: %w", err)
		}
		type tagged struct {
			pk  container.Packet
			asu int
		}
		var all []tagged
		for asuIdx, st := range res.Output.Streams {
			asuIdx := asuIdx
			st.ForEach(func(pk container.Packet) bool {
				all = append(all, tagged{pk: pk, asu: asuIdx})
				return true
			})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].pk.Bucket != all[j].pk.Bucket {
				return all[i].pk.Bucket < all[j].pk.Bucket
			}
			return all[i].pk.Run < all[j].pk.Run
		})
		for _, t := range all {
			out.packets = append(out.packets, t.pk)
			out.srcASU = append(out.srcASU, t.asu)
		}
	case dsmsort.Conventional:
		res, err := extsort.Sort(cl, xcfg, in)
		if err != nil {
			return nil, 0, fmt.Errorf("terraflow: extsort: %w", err)
		}
		srcASU := -1
		for i, asu := range cl.ASUs {
			if eng, ok := res.Output.Engine().(*bte.DiskEngine); ok && eng.Disk() == asu.Disk {
				srcASU = i
			}
		}
		res.Output.ForEach(func(pk container.Packet) bool {
			out.packets = append(out.packets, pk)
			out.srcASU = append(out.srcASU, srcASU)
			return true
		})
	default:
		return nil, 0, fmt.Errorf("terraflow: unknown placement %v", placement)
	}
	return out, sim.Duration(cl.Sim.Now() - start), nil
}
