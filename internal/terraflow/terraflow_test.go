package terraflow

import (
	"testing"
	"testing/quick"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
)

func testCluster(hosts, asus int) *cluster.Cluster {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = hosts, asus
	p.RecordSize = CellRecordSize
	return cluster.New(p)
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(4, 3)
	g.Set(2, 1, 77)
	if g.At(2, 1) != 77 || g.ID(2, 1) != 6 || g.Cells() != 12 || g.Bytes() != 48 {
		t.Fatal("grid accessors wrong")
	}
}

func TestEncodeDecodeCell(t *testing.T) {
	g := NewGrid(3, 3)
	for i := range g.Elev {
		g.Elev[i] = uint32(i * 10)
	}
	var rec [CellRecordSize]byte
	EncodeCell(g, 1, 1, rec[:])
	c := DecodeCell(rec[:])
	if c.Elev != 40 || c.X != 1 || c.Y != 1 {
		t.Fatalf("center cell decoded %+v", c)
	}
	// Neighbor order: N, NE, E, SE, S, SW, W, NW.
	want := [8]uint32{10, 20, 50, 80, 70, 60, 30, 0}
	if c.Nbr != want {
		t.Fatalf("neighbors %v, want %v", c.Nbr, want)
	}
	// Corner cell has NoNeighbor marks.
	EncodeCell(g, 0, 0, rec[:])
	c = DecodeCell(rec[:])
	if c.Nbr[0] != NoNeighbor || c.Nbr[6] != NoNeighbor || c.Nbr[7] != NoNeighbor {
		t.Fatalf("corner neighbors %v", c.Nbr)
	}
	if c.Nbr[2] != 10 || c.Nbr[4] != 30 {
		t.Fatalf("corner E/S %v", c.Nbr)
	}
}

func TestSteepestDescent(t *testing.T) {
	g := NewGrid(3, 1)
	g.Elev = []uint32{5, 3, 9}
	var rec [CellRecordSize]byte
	EncodeCell(g, 0, 0, rec[:])
	if sd, ok := SteepestDescent(3, 1, DecodeCell(rec[:])); !ok || sd != 2 {
		t.Fatalf("cell 0 sd=%d ok=%v, want E", sd, ok)
	}
	EncodeCell(g, 1, 0, rec[:])
	if _, ok := SteepestDescent(3, 1, DecodeCell(rec[:])); ok {
		t.Fatal("local minimum reported a descent")
	}
	// Plateau tie: equal elevation, lower id wins as "descent".
	g.Elev = []uint32{7, 7, 7}
	EncodeCell(g, 1, 0, rec[:])
	if sd, ok := SteepestDescent(3, 1, DecodeCell(rec[:])); !ok || sd != 6 {
		t.Fatalf("plateau cell 1 sd=%d ok=%v, want W (lower id)", sd, ok)
	}
	EncodeCell(g, 0, 0, rec[:])
	if _, ok := SteepestDescent(3, 1, DecodeCell(rec[:])); ok {
		t.Fatal("plateau cell 0 must be the minimum")
	}
}

func TestReferenceSingleCone(t *testing.T) {
	g := FromBasins(16, 16, []Basin{{X: 8, Y: 8, Base: 0}}, 10)
	colors := ReferenceWatersheds(g)
	if n := CountWatersheds(colors); n != 1 {
		t.Fatalf("cone has %d watersheds, want 1", n)
	}
	if colors[0] != g.ID(8, 8) {
		t.Fatalf("corner drains to %d, want center %d", colors[0], g.ID(8, 8))
	}
}

func TestReferenceTwoBasins(t *testing.T) {
	g := FromBasins(32, 16, []Basin{{X: 4, Y: 8, Base: 0}, {X: 27, Y: 8, Base: 0}}, 10)
	colors := ReferenceWatersheds(g)
	if n := CountWatersheds(colors); n != 2 {
		t.Fatalf("%d watersheds, want 2", n)
	}
	if colors[g.ID(0, 8)] != g.ID(4, 8) || colors[g.ID(31, 8)] != g.ID(27, 8) {
		t.Fatal("edges drain to wrong basins")
	}
}

func TestFullRunMatchesReference(t *testing.T) {
	cl := testCluster(1, 4)
	g, _ := SyntheticBasins(24, 24, 3, 10, 7)
	opt := DefaultOptions()
	opt.Sort = dsmsort.Config{Alpha: 4, Beta: 64, Gamma2: 4, PacketRecords: 32, Placement: dsmsort.Active, Seed: 1}
	opt.PacketRecords = 32
	res, err := Run(cl, g, opt) // Run validates against the reference
	if err != nil {
		t.Fatal(err)
	}
	if res.Restructure <= 0 || res.Sort <= 0 || res.Watershed <= 0 {
		t.Fatalf("phase times %v %v %v", res.Restructure, res.Sort, res.Watershed)
	}
	if res.Watersheds < 1 || res.Watersheds > 3 {
		t.Fatalf("%d watersheds from 3 basins", res.Watersheds)
	}
}

func TestConventionalRunMatchesReference(t *testing.T) {
	cl := testCluster(1, 2)
	g, _ := SyntheticBasins(16, 16, 2, 10, 3)
	opt := DefaultOptions()
	opt.Placement = dsmsort.Conventional
	opt.XSort.MemRecords = 128
	if _, err := Run(cl, g, opt); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTerrainMatchesReference(t *testing.T) {
	// Uniform random elevations: many watersheds, heavy plateau-free
	// tie-breaking; the TFP result must still match exactly.
	cl := testCluster(1, 2)
	g := Random(20, 20, 99)
	opt := DefaultOptions()
	opt.Sort = dsmsort.Config{Alpha: 4, Beta: 64, Gamma2: 4, PacketRecords: 32, Placement: dsmsort.Active, Seed: 1}
	res, err := Run(cl, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Watersheds < 2 {
		t.Fatalf("random terrain produced %d watersheds; expected many", res.Watersheds)
	}
}

func TestPlateauTerrain(t *testing.T) {
	// A constant grid is one giant plateau: every cell must drain to
	// cell 0 by id order.
	cl := testCluster(1, 2)
	g := NewGrid(8, 8)
	for i := range g.Elev {
		g.Elev[i] = 500
	}
	opt := DefaultOptions()
	opt.Sort = dsmsort.Config{Alpha: 2, Beta: 32, Gamma2: 4, PacketRecords: 16, Placement: dsmsort.Active, Seed: 1}
	res, err := Run(cl, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Watersheds != 1 || res.Colors[63] != 0 {
		t.Fatalf("plateau: %d watersheds, corner color %d", res.Watersheds, res.Colors[63])
	}
}

// TestWatershedProperty: emulated TFP equals the reference on arbitrary
// random terrains (Run returns an error on any divergence).
func TestWatershedProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%12) + 4
		h := int(hRaw%12) + 4
		cl := testCluster(1, 2)
		g := Random(w, h, seed)
		opt := DefaultOptions()
		opt.Sort = dsmsort.Config{Alpha: 2, Beta: 32, Gamma2: 4, PacketRecords: 16, Placement: dsmsort.Active, Seed: 1}
		opt.PacketRecords = 16
		_, err := Run(cl, g, opt)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRestructureActiveFasterWithManyASUs(t *testing.T) {
	// Step 1 is "easily distributed": ASU-parallel restructuring should
	// beat the host pulling every band through itself.
	g, _ := SyntheticBasins(64, 64, 4, 10, 5)
	elapsed := func(placement dsmsort.Placement) float64 {
		cl := testCluster(1, 8)
		_, d, err := Restructure(cl, g, placement, 64)
		if err != nil {
			t.Fatal(err)
		}
		return d.Seconds()
	}
	active, conv := elapsed(dsmsort.Active), elapsed(dsmsort.Conventional)
	if active >= conv {
		t.Fatalf("active restructure %.6fs not faster than conventional %.6fs", active, conv)
	}
}

func TestBandPartition(t *testing.T) {
	total := 0
	for i := 0; i < 7; i++ {
		lo, hi := band(100, 7, i)
		total += hi - lo
		if lo > hi {
			t.Fatal("negative band")
		}
	}
	if total != 100 {
		t.Fatalf("bands cover %d rows, want 100", total)
	}
}
