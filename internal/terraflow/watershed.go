package terraflow

import (
	"fmt"
	"sort"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/dsmsort"
	"lmas/internal/extsort"
	"lmas/internal/pqueue"
	"lmas/internal/sim"
)

// watershedOpsPerCell is step 3's declared per-cell cost beyond the touch
// and the priority-queue charges: choosing the steepest descent and
// preparing up to eight forward messages.
const watershedOpsPerCell = 16

// Watershed runs step 3 on the cluster's first host: time-forward
// processing over the elevation-ordered cells, propagating colors "from the
// lowest points up/outward to the peaks and ridges". The priority queue
// spills to the first ASU's disk, paying network hops for each spill — the
// host has no local disk in the model of Figure 2.
//
// This step runs on a host regardless of configuration: it "is difficult
// to parallelize because it uses time-forward processing and relies on
// ordering for correctness", which is why ASUs accelerate steps 1-2 but
// not this one (the TAB-TERRA result).
func Watershed(cl *cluster.Cluster, g *Grid, cells *sortedCells, pqMemItems int) ([]uint32, sim.Duration, error) {
	host := cl.Hosts[0]
	spillASU := cl.ASUs[0]
	eng := &bte.Hooked{
		Engine: bte.NewDisk(spillASU.Disk),
		OnXfer: nil, // set inside the proc, which knows its identity
	}
	colors := make([]uint32, g.Cells())
	for i := range colors {
		colors[i] = NoNeighbor
	}
	var werr error
	start := cl.Sim.Now()
	// Per-ASU prefetch readers stream the sorted packets toward the host
	// in parallel, so the (striped) disks overlap their transfers with
	// each other and with host processing.
	feeds := make([]*sim.Queue[container.Packet], len(cl.ASUs))
	perASU := make([][]container.Packet, len(cl.ASUs))
	for pi, pk := range cells.packets {
		if src := cells.srcASU[pi]; src >= 0 {
			perASU[src] = append(perASU[src], pk)
		}
	}
	for i, asu := range cl.ASUs {
		if len(perASU[i]) == 0 {
			continue
		}
		i, asu := i, asu
		feeds[i] = sim.NewQueue[container.Packet](cl.Sim, fmt.Sprintf("ws.feed%d", i), 4)
		cl.Sim.Spawn(fmt.Sprintf("ws.read@asu%d", i), func(p *sim.Proc) {
			for _, pk := range perASU[i] {
				asu.Disk.Read(p, pk.Bytes())
				cl.Net.Stream(p, asu.NIC, host.NIC, pk.Bytes()+64)
				if err := feeds[i].Put(p, pk); err != nil {
					panic(err)
				}
			}
			feeds[i].Close()
		})
	}
	cl.Sim.Spawn("watershed@host", func(p *sim.Proc) {
		eng.OnXfer = func(pp *sim.Proc, bytes int) {
			cl.Net.Send(pp, host.NIC, spillASU.NIC, bytes+64)
		}
		pq := pqueue.New(cl, host, eng, pqMemItems)
		pq.Strict = true
		cm := cl.Params.Costs
		touch := cl.Touch(host)

		// group buffers cells of equal elevation so ties process in id
		// order (the total order ties are broken by).
		var group []Cell
		var groupElev uint32
		processGroup := func() {
			if len(group) == 0 {
				return
			}
			sort.Slice(group, func(i, j int) bool {
				return g.ID(int(group[i].X), int(group[i].Y)) < g.ID(int(group[j].X), int(group[j].Y))
			})
			for _, c := range group {
				id := g.ID(int(c.X), int(c.Y))
				self := order(c.Elev, id)
				// Collect this cell's messages.
				var fromSD uint32 = NoNeighbor
				sdIdx, hasSD := SteepestDescent(g.W, g.H, c)
				var sdID uint32
				if hasSD {
					sdID, _ = NeighborID(g.W, g.H, c.X, c.Y, sdIdx)
				}
				for {
					it, ok := pq.Peek(p)
					if !ok || it.Key != self {
						break
					}
					pq.PopMin(p)
					if uint32(it.Payload>>32) == sdID {
						fromSD = uint32(it.Payload)
					}
				}
				var color uint32
				if !hasSD {
					color = id // local minimum starts a watershed
				} else {
					if fromSD == NoNeighbor {
						werr = fmt.Errorf("terraflow: cell %d missing message from steepest-descent neighbor %d", id, sdID)
						return
					}
					color = fromSD
				}
				colors[id] = color
				// Forward the color to every neighbor later in the
				// processing order.
				for i, e := range c.Nbr {
					if e == NoNeighbor {
						continue
					}
					nid, ok := NeighborID(g.W, g.H, c.X, c.Y, i)
					if !ok {
						continue
					}
					if no := order(e, nid); no > self {
						pq.Push(p, pqueue.Item{
							Key:     no,
							Payload: uint64(id)<<32 | uint64(color),
						})
					}
				}
				host.Compute(p, touch+watershedOpsPerCell*cm.CompareOps)
			}
			group = group[:0]
		}

		for pi, pk := range cells.packets {
			// Wait for the packet's delivery from its storage unit.
			if src := cells.srcASU[pi]; src >= 0 {
				got, ok := feeds[src].Get(p)
				if !ok {
					werr = fmt.Errorf("terraflow: feed from asu%d ended early", src)
					return
				}
				pk = got
			}
			n := pk.Len()
			for r := 0; r < n; r++ {
				c := DecodeCell(pk.Buf.Record(r))
				if len(group) > 0 && c.Elev != groupElev {
					processGroup()
				}
				groupElev = c.Elev
				group = append(group, c)
			}
		}
		processGroup()
		if werr == nil && pq.Len() != 0 {
			werr = fmt.Errorf("terraflow: %d undelivered messages after processing", pq.Len())
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return nil, 0, fmt.Errorf("terraflow: watershed: %w", err)
	}
	if werr != nil {
		return nil, 0, werr
	}
	for i, c := range colors {
		if c == NoNeighbor {
			return nil, 0, fmt.Errorf("terraflow: cell %d never colored", i)
		}
	}
	return colors, sim.Duration(cl.Sim.Now() - start), nil
}

// Options configures a full TerraFlow watershed run.
type Options struct {
	// Placement applies to steps 1 and 2 (step 3 is always host-side).
	Placement dsmsort.Placement
	// Sort configures DSM-Sort for Active placement.
	Sort dsmsort.Config
	// XSort configures the host-only sort for Conventional placement.
	XSort extsort.Config
	// PacketRecords sizes restructure output packets.
	PacketRecords int
	// PQMemItems sizes step 3's priority-queue buffer.
	PQMemItems int
	// Flow also computes upstream-area flow accumulation (a second
	// time-forward pass over the sorted cells, in descending order).
	Flow bool
}

// DefaultOptions returns a balanced configuration.
func DefaultOptions() Options {
	return Options{
		Placement:     dsmsort.Active,
		Sort:          dsmsort.Config{Alpha: 8, Beta: 256, Gamma2: 8, PacketRecords: 64, Placement: dsmsort.Active, Seed: 1},
		XSort:         extsort.Config{MemRecords: 1 << 12, FanIn: 8},
		PacketRecords: 64,
		PQMemItems:    1 << 12,
	}
}

// Result reports a full run.
type Result struct {
	Colors     []uint32
	Watersheds int
	// Areas holds each cell's upstream area when Options.Flow is set.
	Areas []uint32
	// Phase durations (the TAB-TERRA breakdown).
	Restructure, Sort, Watershed sim.Duration
	// FlowAccum is the flow-accumulation pass duration (Flow only).
	FlowAccum sim.Duration
}

// Total reports the end-to-end virtual time across all executed phases.
func (r *Result) Total() sim.Duration {
	return r.Restructure + r.Sort + r.Watershed + r.FlowAccum
}

// Run executes all three steps on cl and validates the labeling against
// the in-memory reference implementation.
func Run(cl *cluster.Cluster, g *Grid, opt Options) (*Result, error) {
	sets, t1, err := Restructure(cl, g, opt.Placement, opt.PacketRecords)
	if err != nil {
		return nil, err
	}
	in := inputFromSets(sets)
	if in.N != g.Cells() {
		return nil, fmt.Errorf("terraflow: restructured %d cells, want %d", in.N, g.Cells())
	}
	cells, t2, err := sortCells(cl, opt.Placement, opt.Sort, opt.XSort, in)
	if err != nil {
		return nil, err
	}
	colors, t3, err := Watershed(cl, g, cells, opt.PQMemItems)
	if err != nil {
		return nil, err
	}
	ref := ReferenceWatersheds(g)
	for i := range ref {
		if colors[i] != ref[i] {
			return nil, fmt.Errorf("terraflow: cell %d colored %d, reference %d", i, colors[i], ref[i])
		}
	}
	res := &Result{
		Colors:      colors,
		Watersheds:  CountWatersheds(colors),
		Restructure: t1,
		Sort:        t2,
		Watershed:   t3,
	}
	if opt.Flow {
		areas, t4, err := FlowAccumulation(cl, g, cells, opt.PQMemItems)
		if err != nil {
			return nil, err
		}
		refA := ReferenceAccumulation(g)
		for i := range refA {
			if areas[i] != refA[i] {
				return nil, fmt.Errorf("terraflow: cell %d area %d, reference %d", i, areas[i], refA[i])
			}
		}
		// Cross-check between the two flow indices: a local minimum's
		// upstream area is exactly its watershed's size.
		sizes := map[uint32]uint32{}
		for _, c := range colors {
			sizes[c]++
		}
		for min, size := range sizes {
			if areas[min] != size {
				return nil, fmt.Errorf("terraflow: minimum %d has area %d but watershed size %d",
					min, areas[min], size)
			}
		}
		res.Areas = areas
		res.FlowAccum = t4
	}
	return res, nil
}
