package trace

import (
	"fmt"
	"strings"
	"testing"
)

func fmtStream(e StreamEvent) string {
	return fmt.Sprintf("%c t=%d dur=%d %s/%s#%d %s", e.Ph, e.TS, e.Dur, e.Group, e.Track, e.TID, e.Name)
}

// TestSetStreamerReplayThenLive: a streamer installed after events were
// buffered receives the backlog first (in record order), then every new
// event live — so the recorder attach point during cluster setup never
// loses spans, whichever of AttachTrace/AttachRecorder runs first.
func TestSetStreamerReplayThenLive(t *testing.T) {
	s := New()
	cpu := s.SharedTrack("host0", "host0.cpu")
	q := s.NewTrack("asu0", "jobs")

	// Buffered before the streamer exists.
	s.Span(cpu, 100, 250, "compute", "cpu")
	s.Instant(q, 300, "enqueue", "queue")

	var got []string
	s.SetStreamer(func(e StreamEvent) { got = append(got, fmtStream(e)) })

	// Live after installation.
	s.Begin(cpu, 400, "merge", "cpu")
	s.End(cpu, 450)
	s.Counter(q, 500, "depth", 3)

	want := []string{
		"X t=100 dur=150 host0/host0.cpu#1 compute",
		"i t=300 dur=0 asu0/jobs#2 enqueue",
		"B t=400 dur=0 host0/host0.cpu#1 merge",
		"E t=450 dur=0 host0/host0.cpu#1 ",
		"C t=500 dur=0 asu0/jobs#2 depth",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("stream:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// Clearing stops the stream without touching the buffer.
	s.SetStreamer(nil)
	s.Instant(q, 600, "late", "queue")
	if len(got) != len(want) {
		t.Fatalf("cleared streamer still invoked: %d events", len(got))
	}
	if s.Events() != 6 {
		t.Fatalf("buffer = %d events, want 6", s.Events())
	}

	// A nil sink accepts (and ignores) a streamer.
	var nilSink *Sink
	nilSink.SetStreamer(func(StreamEvent) { t.Fatal("nil sink streamed") })
}
