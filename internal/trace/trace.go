// Package trace records structured, typed events from a simulation run and
// exports them as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) or as a flat CSV time series.
//
// The paper's emulator "is instrumented to report application progress,
// overall runtime, and resource utilization for each host and ASU in the
// target (emulated) system" (Section 5). A Sink is that instrument in
// structured form: every emulated node, resource and thread of control gets
// its own timeline (a track), and the instrumented layers — the sim kernel,
// disks, network interfaces, and functor pipelines — append spans and
// instants to it in virtual time.
//
// A Sink is attached to a simulation with sim.Sim.SetTracer (or
// cluster.Cluster.AttachTrace, which also pre-registers node tracks in a
// canonical order). A nil *Sink is a valid "tracing off" value: every method
// no-ops on a nil receiver, so instrumented code pays a single pointer check
// when tracing is disabled. Because the simulation is deterministic, the
// same seed produces a byte-identical exported trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Time is a point in virtual time in nanoseconds, mirroring sim.Time without
// importing it (the sim kernel imports this package, not the reverse).
type Time = int64

// Track identifies one timeline in the trace: an emulated resource (a CPU,
// disk or NIC), a proc, or a queue. The zero Track is invalid.
type Track int32

// Arg is one key/value annotation on an event. Args are kept ordered so that
// exports are deterministic.
type Arg struct {
	Key string
	Val any
}

// Event phases, following the Chrome trace-event format.
const (
	phaseBegin   = 'B' // span open
	phaseEnd     = 'E' // span close
	phaseSpan    = 'X' // complete span with duration
	phaseInstant = 'i' // point event
	phaseCounter = 'C' // counter sample
)

type trackInfo struct {
	group int // index into groups
	name  string
}

type event struct {
	track Track
	ph    byte
	ts    Time
	dur   Time // phaseSpan only
	name  string
	cat   string
	args  []Arg
}

// Sink accumulates events for one simulation. Create one with New; the zero
// value is not usable (but a nil *Sink is, as "tracing disabled").
type Sink struct {
	groups   []string
	groupIdx map[string]int
	tracks   []trackInfo // tracks[i] describes Track(i+1)
	shared   map[string]Track
	events   []event
	streamer func(StreamEvent)
}

// StreamEvent is one trace event in self-describing form: track identity is
// resolved to group/track names so a consumer outside this package (the run
// recorder) can persist it without holding the Sink's track table.
type StreamEvent struct {
	TS    Time
	Dur   Time // phase 'X' only
	Ph    byte
	Group string
	Track string
	TID   int32 // the Sink-local track id, stable within one run
	Name  string
	Cat   string
	Args  []Arg
}

func (s *Sink) streamEvent(e event) StreamEvent {
	ti := s.tracks[e.track-1]
	return StreamEvent{
		TS:    e.ts,
		Dur:   e.dur,
		Ph:    e.ph,
		Group: s.groups[ti.group],
		Track: ti.name,
		TID:   int32(e.track),
		Name:  e.name,
		Cat:   e.cat,
		Args:  e.args,
	}
}

// SetStreamer installs an observer called synchronously for every event as
// it is recorded — the hook the run recorder uses to stream spans into store
// segments. Events already buffered in the sink are replayed to fn first, so
// the stream is complete regardless of when during setup the streamer is
// attached. Nil clears it; no-op on a nil sink.
//
// Events are appended from the simulation's event-loop side only, and event
// order is engine-independent (pinned by the cross-engine trace tests), so
// the stream a deterministic run produces is itself deterministic.
func (s *Sink) SetStreamer(fn func(StreamEvent)) {
	if s == nil {
		return
	}
	s.streamer = fn
	if fn == nil {
		return
	}
	for _, e := range s.events {
		fn(s.streamEvent(e))
	}
}

// New creates an empty sink.
func New() *Sink {
	return &Sink{
		groupIdx: make(map[string]int),
		shared:   make(map[string]Track),
	}
}

// GroupOf derives a track's display group from a dotted resource name:
// "asu3.disk" belongs to group "asu3". Names without a dot group under
// themselves.
func GroupOf(name string) string {
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

func (s *Sink) group(name string) int {
	if g, ok := s.groupIdx[name]; ok {
		return g
	}
	g := len(s.groups)
	s.groups = append(s.groups, name)
	s.groupIdx[name] = g
	return g
}

// SharedTrack returns the track named name in group, creating it on first
// use. Repeated calls with the same name return the same track, so resources
// and instrumentation layers can rendezvous on a timeline by name.
func (s *Sink) SharedTrack(group, name string) Track {
	if s == nil {
		return 0
	}
	if tr, ok := s.shared[name]; ok {
		return tr
	}
	tr := s.addTrack(group, name)
	s.shared[name] = tr
	return tr
}

// NewTrack creates a fresh track, never merging with an existing one of the
// same name. Procs use it: two procs spawned with the same name must not
// interleave spans on one timeline.
func (s *Sink) NewTrack(group, name string) Track {
	if s == nil {
		return 0
	}
	return s.addTrack(group, name)
}

func (s *Sink) addTrack(group, name string) Track {
	s.tracks = append(s.tracks, trackInfo{group: s.group(group), name: name})
	return Track(len(s.tracks))
}

// Tracks reports the number of registered tracks.
func (s *Sink) Tracks() int {
	if s == nil {
		return 0
	}
	return len(s.tracks)
}

// Events reports the number of recorded events.
func (s *Sink) Events() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

func (s *Sink) add(e event) {
	if s == nil || e.track == 0 {
		return
	}
	s.events = append(s.events, e)
	if s.streamer != nil {
		s.streamer(s.streamEvent(e))
	}
}

// Begin opens a span on tr at ts. Spans on one track must nest: close them
// with End in LIFO order.
func (s *Sink) Begin(tr Track, ts Time, name, cat string, args ...Arg) {
	s.add(event{track: tr, ph: phaseBegin, ts: ts, name: name, cat: cat, args: args})
}

// End closes the innermost open span on tr at ts.
func (s *Sink) End(tr Track, ts Time, args ...Arg) {
	s.add(event{track: tr, ph: phaseEnd, ts: ts, args: args})
}

// Span records a complete [from, to) span on tr. Unlike Begin/End pairs it
// may be recorded before virtual time reaches `to` (device models book
// transfers into the future), as long as successive spans on one track do
// not move backwards.
func (s *Sink) Span(tr Track, from, to Time, name, cat string, args ...Arg) {
	if to < from {
		to = from
	}
	s.add(event{track: tr, ph: phaseSpan, ts: from, dur: to - from, name: name, cat: cat, args: args})
}

// Instant records a point event on tr at ts.
func (s *Sink) Instant(tr Track, ts Time, name, cat string, args ...Arg) {
	s.add(event{track: tr, ph: phaseInstant, ts: ts, name: name, cat: cat, args: args})
}

// Counter records a sample of the named counter on tr at ts. Viewers render
// successive samples as a stepped time series.
func (s *Sink) Counter(tr Track, ts Time, name string, value int64) {
	s.add(event{track: tr, ph: phaseCounter, ts: ts, name: name, args: []Arg{{Key: "value", Val: value}}})
}

// usec renders a virtual-time nanosecond stamp as the microseconds the
// Chrome trace-event format expects, with fixed sub-microsecond precision so
// output is byte-stable.
func usec(t Time) string {
	return strconv.FormatFloat(float64(t)/1e3, 'f', 3, 64)
}

func writeJSONString(w *strings.Builder, v string) {
	b, _ := json.Marshal(v)
	w.Write(b)
}

func writeArgs(w *strings.Builder, args []Arg) error {
	w.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			w.WriteByte(',')
		}
		writeJSONString(w, a.Key)
		w.WriteByte(':')
		b, err := json.Marshal(a.Val)
		if err != nil {
			return fmt.Errorf("trace: arg %q: %w", a.Key, err)
		}
		w.Write(b)
	}
	w.WriteByte('}')
	return nil
}

// WriteJSON exports the trace in Chrome trace-event JSON ("JSON object
// format"): open the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each track group becomes a process and each track a thread, named via
// metadata events. Timestamps are virtual-time microseconds.
func (s *Sink) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`+"\n")
		return err
	}
	var sb strings.Builder
	sb.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString("\n")
	}
	for g, name := range s.groups {
		sep()
		fmt.Fprintf(&sb, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":`, g)
		writeJSONString(&sb, name)
		sb.WriteString(`}}`)
	}
	for i, ti := range s.tracks {
		sep()
		fmt.Fprintf(&sb, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":`, ti.group, i+1)
		writeJSONString(&sb, ti.name)
		sb.WriteString(`}}`)
	}
	for _, e := range s.events {
		ti := s.tracks[e.track-1]
		sep()
		sb.WriteString(`{"name":`)
		writeJSONString(&sb, e.name)
		if e.cat != "" {
			sb.WriteString(`,"cat":`)
			writeJSONString(&sb, e.cat)
		}
		fmt.Fprintf(&sb, `,"ph":"%c","ts":%s`, e.ph, usec(e.ts))
		if e.ph == phaseSpan {
			fmt.Fprintf(&sb, `,"dur":%s`, usec(e.dur))
		}
		if e.ph == phaseInstant {
			sb.WriteString(`,"s":"t"`) // thread-scoped instant
		}
		fmt.Fprintf(&sb, `,"pid":%d,"tid":%d`, ti.group, e.track)
		if len(e.args) > 0 {
			sb.WriteString(`,"args":`)
			if err := writeArgs(&sb, e.args); err != nil {
				return err
			}
		}
		sb.WriteString(`}`)
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV exports the trace as a flat time series, one event per row:
//
//	ts_ns,dur_ns,phase,group,track,name,cat,args
//
// args are rendered as semicolon-separated key=value pairs. The CSV fallback
// feeds plotting tools that do not speak the Chrome trace format.
func (s *Sink) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("ts_ns,dur_ns,phase,group,track,name,cat,args\n")
	if s != nil {
		for _, e := range s.events {
			ti := s.tracks[e.track-1]
			var args strings.Builder
			for i, a := range e.args {
				if i > 0 {
					args.WriteByte(';')
				}
				fmt.Fprintf(&args, "%s=%v", a.Key, a.Val)
			}
			fmt.Fprintf(&sb, "%d,%d,%c,%s,%s,%s,%s,%s\n",
				e.ts, e.dur, e.ph,
				csvField(s.groups[ti.group]), csvField(ti.name),
				csvField(e.name), csvField(e.cat), csvField(args.String()))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvField(v string) string {
	if strings.ContainsAny(v, ",\"\n") {
		return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
	}
	return v
}
