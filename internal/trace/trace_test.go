package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGroupOf(t *testing.T) {
	cases := map[string]string{
		"asu3.disk": "asu3",
		"host0.cpu": "host0",
		"monitor":   "monitor",
		"a.b.c":     "a.b",
		".hidden":   ".hidden",
	}
	for in, want := range cases {
		if got := GroupOf(in); got != want {
			t.Errorf("GroupOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSharedTrackRendezvous(t *testing.T) {
	s := New()
	a := s.SharedTrack("asu0", "asu0.disk")
	b := s.SharedTrack("asu0", "asu0.disk")
	if a != b {
		t.Fatalf("SharedTrack returned distinct tracks %d, %d", a, b)
	}
	c := s.NewTrack("procs", "reader")
	d := s.NewTrack("procs", "reader")
	if c == d {
		t.Fatal("NewTrack must not merge same-named tracks")
	}
	if s.Tracks() != 3 {
		t.Fatalf("Tracks = %d, want 3", s.Tracks())
	}
}

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	tr := s.SharedTrack("g", "n")
	if tr != 0 {
		t.Fatal("nil sink returned a live track")
	}
	s.Begin(tr, 0, "x", "c")
	s.End(tr, 1)
	s.Span(tr, 0, 1, "x", "c")
	s.Instant(tr, 0, "x", "c")
	s.Counter(tr, 0, "x", 1)
	if s.Events() != 0 || s.Tracks() != 0 {
		t.Fatal("nil sink recorded something")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-sink JSON invalid: %v", err)
	}
}

func TestZeroTrackEventsDropped(t *testing.T) {
	s := New()
	s.Begin(0, 0, "x", "c")
	s.Instant(0, 0, "x", "c")
	if s.Events() != 0 {
		t.Fatal("events on the zero track must be dropped")
	}
}

func buildSample() *Sink {
	s := New()
	cpu := s.SharedTrack("asu0", "asu0.cpu")
	disk := s.SharedTrack("asu0", "asu0.disk")
	proc := s.NewTrack("procs", "reader")
	s.Instant(proc, 0, "spawn", "proc")
	s.Begin(cpu, 1000, "hold", "resource", Arg{Key: "proc", Val: "reader"}, Arg{Key: "high", Val: false})
	s.Span(disk, 1500, 2500, "read.cold", "disk", Arg{Key: "bytes", Val: 4096})
	s.End(cpu, 3000)
	s.Counter(proc, 3000, "depth", 2)
	return s
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

func TestWriteJSONValid(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, data int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta++
			continue
		}
		data++
		switch e.Ph {
		case "B", "E", "X", "i", "C":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.Ph == "X" && e.Dur < 0 {
			t.Fatalf("negative duration on %q", e.Name)
		}
	}
	// 2 groups + 3 tracks named, 5 recorded events.
	if meta != 5 || data != 5 {
		t.Fatalf("meta=%d data=%d, want 5/5", meta, data)
	}
	// Timestamps are microseconds: the hold began at 1000 ns = 1 µs.
	if !strings.Contains(buf.String(), `"ts":1.000`) {
		t.Fatalf("expected µs timestamps:\n%s", buf.String())
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical sinks exported different bytes")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "ts_ns,dur_ns,phase,group,track,name,cat,args" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 6 { // header + 5 events
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(buf.String(), "1500,1000,X,asu0,asu0.disk,read.cold,disk,bytes=4096") {
		t.Fatalf("missing disk span row:\n%s", buf.String())
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	s := New()
	tr := s.NewTrack("g", "n")
	s.Span(tr, 100, 50, "x", "c")
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":0.000`) {
		t.Fatalf("inverted span not clamped:\n%s", buf.String())
	}
}
