// Package lmas is a library for distributed computing with load-managed
// active storage: a reproduction of Wickremesinghe, Chase & Vitter,
// "Distributed Computing with Load-Managed Active Storage" (HPDC 2002).
//
// The library provides:
//
//   - a deterministic, timing-accurate emulator for clusters of hosts and
//     Active Storage Units (ASUs) — processors colocated with disks —
//     connected by a SAN (packages sim, disk, netsim, cluster);
//   - a TPIE-style streaming data layer of fixed-size records in Streams,
//     Sets and Arrays of Packets on a pluggable Block Transfer Engine
//     (packages records, bte, container);
//   - the paper's functor programming model: bounded per-record
//     computations composed into dataflow pipelines whose stages are
//     replicated and placed on hosts or ASUs, with routing policies that
//     spread load across instances (packages functor, route, loadmgr);
//   - DSM-Sort, the configurable distribute/sort/merge sort whose α, β, γ
//     parameters shift work between hosts and ASUs, plus a conventional
//     host-only external mergesort baseline (packages dsmsort, extsort);
//   - the GIS applications of the paper: TerraFlow watershed analysis with
//     time-forward processing on an external priority queue, and
//     distributed R-trees in partitioned and striped organizations
//     (packages terraflow, pqueue, rtree);
//   - harnesses regenerating every figure and table of the paper's
//     evaluation (package experiments; see also cmd/asulab).
//
// This package re-exports the most commonly used entry points so that
// downstream code can depend on a single import; the full API lives in the
// internal packages and is documented there.
package lmas

import (
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/dsmsort"
	"lmas/internal/experiments"
	"lmas/internal/extsort"
	"lmas/internal/functor"
	"lmas/internal/loadmgr"
	"lmas/internal/metrics"
	"lmas/internal/onepass"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/rtree"
	"lmas/internal/sim"
	"lmas/internal/terraflow"
	"lmas/internal/trace"
)

// Emulated system.
type (
	// Params configures an emulated cluster (hosts, ASUs, power ratio
	// c, disks, interconnect, memory bounds, cost model).
	Params = cluster.Params
	// Cluster is a built emulated system of hosts and ASUs.
	Cluster = cluster.Cluster
	// Node is one emulated machine (host or ASU).
	Node = cluster.Node
	// CostModel assigns op counts to streaming primitives.
	CostModel = cluster.CostModel
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Time is a point in virtual time.
	Time = sim.Time
)

// DefaultParams returns the baseline emulated configuration.
func DefaultParams() Params { return cluster.DefaultParams() }

// Trace is a structured trace sink recording typed events from an emulated
// run in virtual time; export with WriteJSON (Perfetto/chrome://tracing) or
// WriteCSV.
type Trace = trace.Sink

// NewTrace creates an empty trace sink; attach it to a cluster with
// Cluster.AttachTrace before running.
func NewTrace() *Trace { return trace.New() }

// NewCluster builds an emulated system; it panics on invalid Params.
func NewCluster(p Params) *Cluster { return cluster.New(p) }

// Data layer.
type (
	// Buffer is a dense array of fixed-size records.
	Buffer = records.Buffer
	// Key is a record's 4-byte sort key.
	Key = records.Key
	// Checksum is an order-independent multiset digest of records.
	Checksum = records.Checksum
	// KeyDist generates keys for synthetic workloads.
	KeyDist = records.KeyDist
	// Uniform draws keys uniformly.
	Uniform = records.Uniform
	// Exponential draws low-skewed keys (the Figure 10 skew).
	Exponential = records.Exponential
	// Packet is a group of records processed as a whole.
	Packet = container.Packet
	// Set is an unordered record collection.
	Set = container.Set
	// Stream is an ordered record collection.
	Stream = container.Stream
	// Array is a random-access record collection.
	Array = container.Array
)

// Programming model.
type (
	// Functor is the per-record streaming primitive with bounded cost.
	Functor = functor.Functor
	// Kernel is a packet-granularity verified computation.
	Kernel = functor.Kernel
	// Pipeline composes stages into a dataflow program on a cluster.
	Pipeline = functor.Pipeline
	// Stage is a replicated, placed computation step.
	Stage = functor.Stage
	// RoutePolicy selects destination instances for packets.
	RoutePolicy = route.Policy
)

// NewPipeline creates an empty dataflow pipeline on cl.
func NewPipeline(cl *Cluster) *Pipeline { return functor.NewPipeline(cl) }

// NewSR returns the simple-randomization routing policy.
func NewSR(seed int64) RoutePolicy { return route.NewSR(seed) }

// DSM-Sort and baselines.
type (
	// SortConfig parameterizes DSM-Sort (α, β, γ, placement, routing).
	SortConfig = dsmsort.Config
	// SortInput is a record set striped across the ASUs.
	SortInput = dsmsort.Input
	// SortResult reports a completed two-pass DSM-Sort.
	SortResult = dsmsort.Result
	// ExtsortConfig parameterizes the host-only external mergesort.
	ExtsortConfig = extsort.Config
)

// Placements of DSM-Sort computation.
const (
	// Active places distribute/collect functors on the ASUs.
	Active = dsmsort.Active
	// Conventional keeps all computation on the hosts.
	Conventional = dsmsort.Conventional
)

// MakeInput generates and loads a sort input striped across cl's ASUs.
func MakeInput(cl *Cluster, n int, dist KeyDist, seed int64, packetRecords int) *SortInput {
	return dsmsort.MakeInput(cl, n, dist, seed, packetRecords)
}

// Sort runs the full two-pass DSM-Sort and validates the output.
func Sort(cl *Cluster, cfg SortConfig, in *SortInput) (*SortResult, error) {
	return dsmsort.Sort(cl, cfg, in)
}

// ChooseAlpha picks the distribute order with the best predicted speedup —
// the load manager's adaptive configuration choice.
func ChooseAlpha(p Params, candidates []int, beta int) int {
	return loadmgr.ChooseAlpha(p, candidates, beta)
}

// Offloadable primitives and related-work baselines.
type (
	// FilterFunctor drops records at the ASUs ("filtering... directly at
	// the ASUs can reduce data movement").
	FilterFunctor = functor.Filter
	// AggregateKernel folds records into per-bucket summaries.
	AggregateKernel = functor.Aggregate
	// OnePassConfig parameterizes the NOW-Sort-style one-pass sort.
	OnePassConfig = onepass.Config
)

// OnePassSort runs the related-work one-pass cluster sort; it fails with
// onepass.ErrTooLarge past the sort nodes' aggregate memory.
func OnePassSort(cl *Cluster, cfg OnePassConfig, in *SortInput) (*onepass.Result, error) {
	return onepass.Sort(cl, cfg, in)
}

// Applications.
type (
	// Terrain is a raster elevation grid.
	Terrain = terraflow.Grid
	// TerraOptions configures a TerraFlow watershed run.
	TerraOptions = terraflow.Options
	// TerraResult reports watershed labels and phase times.
	TerraResult = terraflow.Result
	// RTree is a bulk-loaded spatial index.
	RTree = rtree.Tree
	// DistributedRTree is an R-tree deployed across hosts and ASUs.
	DistributedRTree = rtree.Distributed
	// Rect is an axis-aligned query rectangle.
	Rect = rtree.Rect
)

// Experiment harnesses (the paper's evaluation).
type (
	// Fig9Options / Fig9Result reproduce Figure 9.
	Fig9Options = experiments.Fig9Options
	Fig9Result  = experiments.Fig9Result
	// Fig10Options / Fig10Result reproduce Figure 10.
	Fig10Options = experiments.Fig10Options
	Fig10Result  = experiments.Fig10Result
	// Table is a rendered results table.
	Table = metrics.Table
)

// RunFig9 reproduces Figure 9 (speedup vs ASUs per α, plus adaptive).
func RunFig9(opt Fig9Options) (*Fig9Result, error) { return experiments.RunFig9(opt) }

// RunFig10 reproduces Figure 10 (utilization under skew, static vs SR).
func RunFig10(opt Fig10Options) (*Fig10Result, error) { return experiments.RunFig10(opt) }

// DefaultFig9Options mirrors the paper's Figure 9 setup.
func DefaultFig9Options() Fig9Options { return experiments.DefaultFig9Options() }

// DefaultFig10Options mirrors the paper's Figure 10 setup.
func DefaultFig10Options() Fig10Options { return experiments.DefaultFig10Options() }
