// Package-level tests exercising the public facade exactly the way a
// downstream user would.
package lmas_test

import (
	"testing"

	"lmas"
)

func TestFacadeQuickSort(t *testing.T) {
	params := lmas.DefaultParams()
	params.Hosts, params.ASUs = 1, 4
	cl := lmas.NewCluster(params)
	in := lmas.MakeInput(cl, 2000, lmas.Uniform{}, 7, 32)
	res, err := lmas.Sort(cl, lmas.SortConfig{
		Alpha: 4, Beta: 64, Gamma2: 8, PacketRecords: 32,
		Placement: lmas.Active, Seed: 7,
	}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Output.Records() != 2000 {
		t.Fatalf("elapsed=%v records=%d", res.Elapsed, res.Output.Records())
	}
}

func TestFacadeAdaptiveAlpha(t *testing.T) {
	params := lmas.DefaultParams()
	params.ASUs = 64
	a := lmas.ChooseAlpha(params, []int{1, 16, 256}, 64)
	params.ASUs = 2
	b := lmas.ChooseAlpha(params, []int{1, 16, 256}, 64)
	if a < b {
		t.Fatalf("adaptive alpha shrank with more ASUs: %d vs %d", a, b)
	}
}

func TestFacadeOnePass(t *testing.T) {
	params := lmas.DefaultParams()
	params.Hosts, params.ASUs = 2, 4
	params.HostMemRecords = 4096
	cl := lmas.NewCluster(params)
	in := lmas.MakeInput(cl, 3000, lmas.Exponential{Mean: 0.1}, 7, 32)
	res, err := lmas.OnePassSort(cl, lmas.OnePassConfig{SampleSize: 1024, PacketRecords: 32, Seed: 7}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestFacadeFig9Small(t *testing.T) {
	opt := lmas.DefaultFig9Options()
	opt.N = 1 << 13
	opt.ASUs = []int{4}
	opt.Alphas = []int{4}
	res, err := lmas.RunFig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Cell(4, 4, false); !ok {
		t.Fatal("missing cell")
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFacadePipeline(t *testing.T) {
	params := lmas.DefaultParams()
	cl := lmas.NewCluster(params)
	pl := lmas.NewPipeline(cl)
	if pl == nil || lmas.NewSR(1) == nil {
		t.Fatal("constructors broken")
	}
}
